(* Tests for the wm_serve serving layer:

   - WM_REQ_v1 parsing: defaults, validation, one-line errors;
   - the LRU result cache: O(1) semantics, recency, eviction accounting;
   - server behaviour: sessions keyed by content digest, batch
     deduplication, cache hits that bill zero new solver resources,
     bounded-queue admission control, eviction, cooperative
     deadline cancellation, jobs-invariant response bodies;
   - shutdown destroying the default pool (and the pool surviving it). *)

module J = Wm_obs.Json
module Obs = Wm_obs.Obs
module G = Wm_graph.Weighted_graph
module P = Wm_graph.Prng
module Gen = Wm_graph.Gen
module Protocol = Wm_serve.Protocol
module Cache = Wm_serve.Cache
module Server = Wm_serve.Server

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let small_graph seed =
  let rng = P.create seed in
  Gen.gnp rng ~n:40 ~p:0.15 ~weights:(Gen.Uniform (1, 50))

let graph_text seed = Wm_graph.Graph_io.to_string (small_graph seed)

let config ?(queue_depth = 16) ?(cache_entries = 64) ?(warm_start = true) () =
  {
    (Server.default_config ()) with
    queue_depth;
    cache_entries;
    warm_start;
    faults = Wm_fault.Spec.none;
  }

let server ?queue_depth ?cache_entries ?warm_start () =
  Server.create (config ?queue_depth ?cache_entries ?warm_start ())

let req line =
  match Protocol.parse_request line with
  | Ok r -> r
  | Error e -> Alcotest.fail ("unexpected parse error: " ^ e)

let load_graph srv seed =
  match
    Server.handle_request srv
      {
        Protocol.id = 0;
        verb = Protocol.Load { graph = Some (graph_text seed); path = None };
      }
  with
  | [ resp ] -> (
      match J.member "digest" resp with
      | Some (J.Str d) -> d
      | _ -> Alcotest.fail "load response lacks digest")
  | _ -> Alcotest.fail "load did not answer exactly once"

let solve_req ?(id = 1) ?digest ?(algo = "streaming") ?(seed = 5) () =
  req
    (Printf.sprintf
       "{\"schema\":\"WM_REQ_v1\",\"id\":%d,\"verb\":\"solve\",\"algo\":%S,\"seed\":%d%s}"
       id algo seed
       (match digest with
       | Some d -> Printf.sprintf ",\"digest\":%S" d
       | None -> ""))

let status resp =
  match J.member "status" resp with
  | Some (J.Str s) -> s
  | _ -> Alcotest.fail "response lacks status"

let cached resp = J.member "cached" resp = Some (J.Bool true)

let str_field resp k =
  match J.member k resp with
  | Some (J.Str s) -> s
  | _ -> Alcotest.fail (Printf.sprintf "response lacks string %S" k)

let result_field resp k =
  match J.member "result" resp with
  | Some r -> (
      match J.member k r with
      | Some v -> v
      | None -> Alcotest.fail (Printf.sprintf "result lacks %S" k))
  | None -> Alcotest.fail "response lacks result"

(* One response required; mutation and load answer immediately, solves
   answer at the flush this helper forces. *)
let one srv r =
  let immediate = Server.handle_request srv r in
  match immediate @ Server.flush srv with
  | [ r ] -> r
  | rs ->
      Alcotest.fail
        (Printf.sprintf "expected one response, got %d" (List.length rs))

let add_edges_req ?(id = 1) edges =
  Printf.sprintf
    "{\"schema\":\"WM_REQ_v1\",\"id\":%d,\"verb\":\"add_edges\",\"edges\":[%s]}"
    id
    (String.concat ","
       (List.map (fun (u, v, w) -> Printf.sprintf "[%d,%d,%d]" u v w) edges))

let remove_edges_req ?(id = 1) edges =
  Printf.sprintf
    "{\"schema\":\"WM_REQ_v1\",\"id\":%d,\"verb\":\"remove_edges\",\"edges\":[%s]}"
    id
    (String.concat ","
       (List.map (fun (u, v) -> Printf.sprintf "[%d,%d]" u v) edges))

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_parse_defaults () =
  match
    (req "{\"schema\":\"WM_REQ_v1\",\"id\":7,\"verb\":\"solve\"}").Protocol.verb
  with
  | Protocol.Solve { digest; params; _ } ->
      check_bool "digest defaults to latest" true (digest = None);
      check_bool "algo defaults to streaming" true
        (params.Protocol.algo = Protocol.Streaming);
      check "seed default" 42 params.Protocol.seed;
      check_bool "epsilon default" true (params.Protocol.epsilon = 0.1);
      check_bool "no deadline" true (params.Protocol.deadline_ms = None)
  | _ -> Alcotest.fail "not a solve"

let test_parse_latest_normalised () =
  match
    (req
       "{\"schema\":\"WM_REQ_v1\",\"id\":1,\"verb\":\"solve\",\"digest\":\"latest\"}")
      .Protocol.verb
  with
  | Protocol.Solve { digest = None; _ } -> ()
  | _ -> Alcotest.fail "\"latest\" should normalise to None"

let test_parse_rejects () =
  let bad line =
    match Protocol.parse_request line with
    | Error msg ->
        check_bool "one-line error" true (not (String.contains msg '\n'))
    | Ok _ -> Alcotest.fail ("accepted: " ^ line)
  in
  bad "not json at all";
  bad "[1,2,3]";
  bad "{\"schema\":\"WM_REQ_v2\",\"id\":1,\"verb\":\"stats\"}";
  bad "{\"schema\":\"WM_REQ_v1\",\"verb\":\"stats\"}";
  bad "{\"schema\":\"WM_REQ_v1\",\"id\":1,\"verb\":\"frobnicate\"}";
  bad "{\"schema\":\"WM_REQ_v1\",\"id\":1,\"verb\":\"load\"}";
  bad "{\"schema\":\"WM_REQ_v1\",\"id\":1,\"verb\":\"solve\",\"epsilon\":1.5}";
  bad "{\"schema\":\"WM_REQ_v1\",\"id\":1,\"verb\":\"solve\",\"deadline_ms\":0}";
  bad "{\"schema\":\"WM_REQ_v1\",\"id\":1,\"verb\":\"solve\",\"algo\":\"hungarian\"}"

let test_cache_key_canonical () =
  let p seed = { Protocol.algo = Protocol.Mpc; epsilon = 0.1; seed; deadline_ms = None } in
  check_str "stable key" (Protocol.cache_key ~digest:"abc" (p 3))
    (Protocol.cache_key ~digest:"abc" (p 3));
  check_bool "seed distinguishes" true
    (Protocol.cache_key ~digest:"abc" (p 3)
    <> Protocol.cache_key ~digest:"abc" (p 4));
  (* the deadline is a delivery constraint, not part of the result
     identity: keys must agree so deadline-free repeats can hit *)
  check_str "deadline not in key"
    (Protocol.cache_key ~digest:"abc" (p 3))
    (Protocol.cache_key ~digest:"abc"
       { (p 3) with Protocol.deadline_ms = Some 50 })

let test_parse_mutations () =
  (match
     (req
        "{\"schema\":\"WM_REQ_v1\",\"id\":1,\"verb\":\"add_edges\",\"edges\":[[0,1,9],[2,3,4]]}")
       .Protocol.verb
   with
  | Protocol.Add_edges { digest = None; edges = [ (0, 1, 9); (2, 3, 4) ] } ->
      ()
  | _ -> Alcotest.fail "add_edges misparsed");
  (match
     (req
        "{\"schema\":\"WM_REQ_v1\",\"id\":2,\"verb\":\"remove_edges\",\"digest\":\"abc\",\"edges\":[[5,1]]}")
       .Protocol.verb
   with
  | Protocol.Remove_edges { digest = Some "abc"; edges = [ (5, 1) ] } -> ()
  | _ -> Alcotest.fail "remove_edges misparsed");
  (match
     (req
        "{\"schema\":\"WM_REQ_v1\",\"id\":3,\"verb\":\"add_vertices\",\"count\":2,\"digest\":\"latest\"}")
       .Protocol.verb
   with
  | Protocol.Add_vertices { digest = None; count = 2 } -> ()
  | _ -> Alcotest.fail "add_vertices misparsed");
  (* the canonical encoding sorts and normalises endpoint order, so the
     same delta always yields the same ledger label *)
  check_str "canonical delta"
    (Protocol.canonical_delta ~add_vertices:1 ~add:[ (3, 2, 7); (0, 1, 9) ]
       ~remove:[ (5, 4) ])
    (Protocol.canonical_delta ~add_vertices:1 ~add:[ (1, 0, 9); (2, 3, 7) ]
       ~remove:[ (4, 5) ])

let test_parse_mutation_rejects () =
  let bad line =
    match Protocol.parse_request line with
    | Error msg ->
        check_bool "one-line error" true (not (String.contains msg '\n'))
    | Ok _ -> Alcotest.fail ("accepted: " ^ line)
  in
  (* empty edge lists *)
  bad "{\"schema\":\"WM_REQ_v1\",\"id\":1,\"verb\":\"add_edges\",\"edges\":[]}";
  bad "{\"schema\":\"WM_REQ_v1\",\"id\":1,\"verb\":\"remove_edges\",\"edges\":[]}";
  (* wrong arity: pairs where triples belong and vice versa *)
  bad
    "{\"schema\":\"WM_REQ_v1\",\"id\":1,\"verb\":\"add_edges\",\"edges\":[[0,1]]}";
  bad
    "{\"schema\":\"WM_REQ_v1\",\"id\":1,\"verb\":\"remove_edges\",\"edges\":[[0,1,5]]}";
  (* non-integer tuple members and missing payloads *)
  bad
    "{\"schema\":\"WM_REQ_v1\",\"id\":1,\"verb\":\"add_edges\",\"edges\":[[0,\"x\",5]]}";
  bad "{\"schema\":\"WM_REQ_v1\",\"id\":1,\"verb\":\"add_edges\"}";
  (* add_vertices needs a positive count *)
  bad "{\"schema\":\"WM_REQ_v1\",\"id\":1,\"verb\":\"add_vertices\"}";
  bad "{\"schema\":\"WM_REQ_v1\",\"id\":1,\"verb\":\"add_vertices\",\"count\":0}";
  bad
    "{\"schema\":\"WM_REQ_v1\",\"id\":1,\"verb\":\"add_vertices\",\"count\":-3}"

(* ------------------------------------------------------------------ *)
(* LRU cache *)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:3 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Cache.add c "c" 3;
  check_bool "find bumps recency" true (Cache.find c "a" = Some 1);
  Cache.add c "d" 4;
  (* "b" was least recently used *)
  check_bool "lru evicted" true (not (Cache.mem c "b"));
  check_bool "bumped survives" true (Cache.mem c "a");
  check "evictions counted" 1 (Cache.evictions c);
  check_bool "mru order" true (Cache.keys c = [ "d"; "a"; "c" ])

let test_cache_replace_and_remove () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "a" 1;
  Cache.add c "a" 10;
  check "replace keeps one entry" 1 (Cache.length c);
  check_bool "replaced value" true (Cache.find c "a" = Some 10);
  Cache.add c "b" 2;
  check "remove_where prefix" 1
    (Cache.remove_where c (fun k -> String.length k = 1 && k.[0] = 'a'));
  check_bool "removed" true (not (Cache.mem c "a"));
  check "removals are not evictions" 0 (Cache.evictions c);
  Cache.clear c;
  check "cleared" 0 (Cache.length c)

let test_cache_disabled () =
  let c = Cache.create ~capacity:0 in
  Cache.add c "a" 1;
  check "nothing stored" 0 (Cache.length c);
  check_bool "always misses" true (Cache.find c "a" = None)

(* Regression: clear used to drop the entries but keep the eviction
   tally, so a cleared cache reported phantom evictions forever. *)
let test_cache_clear_resets_evictions () =
  let c = Cache.create ~capacity:1 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  check "one eviction before clear" 1 (Cache.evictions c);
  Cache.clear c;
  check "cleared entries" 0 (Cache.length c);
  check "clear resets evictions" 0 (Cache.evictions c);
  Cache.add c "c" 3;
  Cache.add c "d" 4;
  check "counting restarts from zero" 1 (Cache.evictions c)

(* ------------------------------------------------------------------ *)
(* Server *)

let test_load_and_digest () =
  let srv = server () in
  let d = load_graph srv 7 in
  check_str "session digest is the content digest"
    (Wm_graph.Graph_io.digest (small_graph 7))
    d;
  (match Server.sessions srv with
  | [ (d', n, m) ] ->
      check_str "stored" d d';
      check "n" (G.n (small_graph 7)) n;
      check "m" (G.m (small_graph 7)) m
  | _ -> Alcotest.fail "expected one session");
  (* reloading the same graph is keyed to the same session *)
  let d2 = load_graph srv 7 in
  check_str "idempotent load" d d2;
  check "still one session" 1 (List.length (Server.sessions srv))

let test_solve_and_cache_bills_zero () =
  let srv = server () in
  let _ = load_graph srv 3 in
  let first =
    let immediate = Server.handle_request srv (solve_req ~id:1 ()) in
    immediate @ Server.flush srv
  in
  (match first with
  | [ r ] ->
      check_str "ok" "ok" (status r);
      check_bool "first is a miss" true (not (cached r))
  | _ -> Alcotest.fail "expected one response");
  (* A repeat solve must be answered from the result cache: identical
     body, cached=true, and zero new solver work billed anywhere. *)
  let passes0 = Obs.counter_value Obs.default "stream.passes" in
  let rounds0 = Obs.counter_value Obs.default "core.main_alg.rounds" in
  let repeat =
    let immediate = Server.handle_request srv (solve_req ~id:2 ()) in
    immediate @ Server.flush srv
  in
  (match (first, repeat) with
  | [ r1 ], [ r2 ] ->
      check_bool "repeat is a hit" true (cached r2);
      check_bool "identical result body" true
        (J.member "result" r1 = J.member "result" r2)
  | _ -> Alcotest.fail "expected one response each");
  check "no new stream passes" passes0
    (Obs.counter_value Obs.default "stream.passes");
  check "no new improvement rounds" rounds0
    (Obs.counter_value Obs.default "core.main_alg.rounds")

let test_batch_dedup () =
  let srv = server () in
  let _ = load_graph srv 3 in
  ignore (Server.handle_request srv (solve_req ~id:1 ()));
  ignore (Server.handle_request srv (solve_req ~id:2 ()));
  ignore (Server.handle_request srv (solve_req ~id:3 ~seed:6 ()));
  let passes0 = Obs.counter_value Obs.default "stream.passes" in
  match Server.flush srv with
  | [ r1; r2; r3 ] ->
      check_bool "leader computed" true (not (cached r1));
      check_bool "duplicate joined the leader" true (cached r2);
      check_bool "distinct params computed" true (not (cached r3));
      check_bool "bodies agree" true
        (J.member "result" r1 = J.member "result" r2);
      check_bool "some solver work happened" true
        (Obs.counter_value Obs.default "stream.passes" > passes0)
  | rs -> Alcotest.fail (Printf.sprintf "expected 3 responses, got %d" (List.length rs))

let test_admission_control () =
  let srv = server ~queue_depth:2 () in
  let _ = load_graph srv 3 in
  check "first admitted" 0
    (List.length (Server.handle_request srv (solve_req ~id:1 ())));
  check "second admitted" 0
    (List.length (Server.handle_request srv (solve_req ~id:2 ~seed:6 ())));
  (match Server.handle_request srv (solve_req ~id:3 ~seed:7 ()) with
  | [ r ] -> check_str "third rejected" "overloaded" (status r)
  | _ -> Alcotest.fail "expected an immediate rejection");
  (* the rejection is per-batch: after the boundary there is room again *)
  check "batch answered" 2 (List.length (Server.flush srv));
  check "admitted after flush" 0
    (List.length (Server.handle_request srv (solve_req ~id:4 ~seed:7 ())));
  check "tail batch answered" 1 (List.length (Server.flush srv))

let test_solve_errors () =
  let srv = server () in
  (match Server.handle_request srv (solve_req ~id:1 ()) with
  | [ r ] -> check_str "no session" "error" (status r)
  | _ -> Alcotest.fail "expected an error response");
  let _ = load_graph srv 3 in
  match Server.handle_request srv (solve_req ~id:2 ~digest:"beef" ()) with
  | [ r ] -> check_str "unknown digest" "error" (status r)
  | _ -> Alcotest.fail "expected an error response"

let test_evict_purges_cache () =
  let srv = server () in
  let d = load_graph srv 3 in
  ignore (Server.handle_request srv (solve_req ~id:1 ()));
  ignore (Server.flush srv);
  let resps =
    Server.handle_request srv
      (req
         (Printf.sprintf
            "{\"schema\":\"WM_REQ_v1\",\"id\":2,\"verb\":\"evict\",\"digest\":%S}"
            d))
  in
  (match resps with
  | [ r ] ->
      check_str "evict ok" "ok" (status r);
      check_bool "one cached result purged" true
        (J.member "evicted_results" r = Some (J.Int 1))
  | _ -> Alcotest.fail "expected one response");
  check "session gone" 0 (List.length (Server.sessions srv));
  (* a fresh load + solve after the purge recomputes (miss, not hit) *)
  let _ = load_graph srv 3 in
  let immediate = Server.handle_request srv (solve_req ~id:3 ()) in
  match immediate @ Server.flush srv with
  | [ r ] -> check_bool "recomputed" true (not (cached r))
  | _ -> Alcotest.fail "expected one response"

(* ------------------------------------------------------------------ *)
(* Incremental sessions *)

(* first endpoint pair absent from [g] (for additions that must not
   collide with an existing edge) *)
let non_edge g =
  let rec find u v =
    if u >= G.n g then Alcotest.fail "graph is complete"
    else if v >= G.n g then find (u + 1) (u + 2)
    else if G.mem_edge g u v then find u (v + 1)
    else (u, v)
  in
  find 0 1

let test_mutate_rekeys_session () =
  let srv = server () in
  let g = small_graph 3 in
  let d = load_graph srv 3 in
  let au, av = non_edge g in
  let r = one srv (req (add_edges_req ~id:2 [ (au, av, 9) ])) in
  check_str "mutation ok" "ok" (status r);
  check_str "previous digest" d (str_field r "previous_digest");
  let patched = G.patch g ~add:[ Wm_graph.Edge.make au av 9 ] () in
  let d1 = Wm_graph.Graph_io.digest patched in
  check_str "rekeyed to the patched content" d1 (str_field r "digest");
  check_bool "generation bumped" true
    (J.member "generation" r = Some (J.Int 1));
  (match Server.sessions srv with
  | [ (d', n, m) ] ->
      check_str "session table rekeyed" d1 d';
      check "n unchanged" (G.n g) n;
      check "one more edge" (G.m g + 1) m
  | _ -> Alcotest.fail "expected one session");
  (* a removal chains on top of the mutated session (digest "latest") *)
  let ru, rv = Wm_graph.Edge.endpoints (G.edges g).(0) in
  let r2 = one srv (req (remove_edges_req ~id:3 [ (ru, rv) ])) in
  let patched2 = G.patch patched ~remove:[ (ru, rv) ] () in
  check_str "chained removal rekeys" (Wm_graph.Graph_io.digest patched2)
    (str_field r2 "digest");
  check_bool "generation counts mutations" true
    (J.member "generation" r2 = Some (J.Int 2))

let test_mutate_error_leaves_session () =
  let srv = server () in
  let g = small_graph 3 in
  let d = load_graph srv 3 in
  let au, av = non_edge g in
  (* removing an absent edge must fail without touching the session *)
  (match Server.handle_request srv (remove_edges_req ~id:2 [ (au, av) ] |> req) with
  | [ r ] -> check_str "rejected" "error" (status r)
  | _ -> Alcotest.fail "expected one error response");
  (match Server.sessions srv with
  | [ (d', _, m) ] ->
      check_str "digest untouched" d d';
      check "edge count untouched" (G.m g) m
  | _ -> Alcotest.fail "expected one session");
  (* and the cached result for the untouched content still hits *)
  let r1 = one srv (solve_req ~id:3 ()) in
  check_bool "first solve computes" true (not (cached r1));
  (match Server.handle_request srv (add_edges_req ~id:4 [ (au, av, -5) ] |> req) with
  | [ r ] -> check_str "negative weight rejected" "error" (status r)
  | _ -> Alcotest.fail "expected one error response");
  let r2 = one srv (solve_req ~id:5 ()) in
  check_bool "cache survives the failed mutation" true (cached r2)

(* The equivalence property behind incremental sessions: mutating a
   loaded session must be indistinguishable from loading the mutated
   content directly — same digest, and (cold-for-cold) the same solve.
   Warm-started solves share the digest but take their own improvement
   trajectory, so the weight leg runs with warm starts disabled. *)
let test_mutate_equiv_direct_load () =
  List.iter
    (fun seed ->
      let g = small_graph seed in
      let au, av = non_edge g in
      let ru, rv = Wm_graph.Edge.endpoints (G.edges g).(1) in
      let patched =
        G.patch g ~add_vertices:1
          ~add:[ Wm_graph.Edge.make au av 17 ]
          ~remove:[ (ru, rv) ] ()
      in
      let srv_mut = server ~warm_start:false () in
      let _ = load_graph srv_mut seed in
      let r_add =
        one srv_mut
          (req
             "{\"schema\":\"WM_REQ_v1\",\"id\":2,\"verb\":\"add_vertices\",\"count\":1}")
      in
      check_str "add_vertices ok" "ok" (status r_add);
      ignore (one srv_mut (req (add_edges_req ~id:3 [ (au, av, 17) ])));
      let r_mut = one srv_mut (req (remove_edges_req ~id:4 [ (ru, rv) ])) in
      check_str "mutated digest matches direct construction"
        (Wm_graph.Graph_io.digest patched)
        (str_field r_mut "digest");
      let srv_direct = server ~warm_start:false () in
      (match
         Server.handle_request srv_direct
           {
             Protocol.id = 1;
             verb =
               Protocol.Load
                 {
                   graph = Some (Wm_graph.Graph_io.to_string patched);
                   path = None;
                 };
           }
       with
      | [ r ] ->
          check_str "direct load keys to the same digest"
            (str_field r_mut "digest") (str_field r "digest")
      | _ -> Alcotest.fail "load did not answer exactly once");
      let s_mut = one srv_mut (solve_req ~id:5 ()) in
      let s_direct = one srv_direct (solve_req ~id:2 ()) in
      check_bool
        (Printf.sprintf "seed %d: identical solve result" seed)
        true
        (J.member "result" s_mut = J.member "result" s_direct))
    [ 3; 7; 11; 19 ]

(* Warm-started re-solves after deletions: the repaired previous
   matching must never leak an edge that no longer exists, so the
   response's validity check (run in the mutated graph) must pass. *)
let test_warm_solve_after_delete () =
  let srv = server () in
  let g = small_graph 5 in
  let _ = load_graph srv 5 in
  let r1 = one srv (solve_req ~id:2 ()) in
  check_bool "cold first solve" true (result_field r1 "warm" = J.Bool false);
  (* delete a handful of edges, some of which are likely matched *)
  let drops =
    [ 0; 1; 2; 3 ]
    |> List.map (fun i -> Wm_graph.Edge.endpoints (G.edges g).(i))
  in
  ignore (one srv (req (remove_edges_req ~id:3 drops)));
  let r2 = one srv (solve_req ~id:4 ()) in
  check_str "warm solve ok" "ok" (status r2);
  check_bool "solve is warm-started" true (result_field r2 "warm" = J.Bool true);
  check_bool "warm matching valid in the mutated graph" true
    (result_field r2 "valid" = J.Bool true);
  (* greedy never warm-starts (single-pass; no improvement loop) *)
  let r3 = one srv (solve_req ~id:5 ~algo:"greedy" ()) in
  check_bool "greedy stays cold" true (result_field r3 "warm" = J.Bool false)

let test_blank_line_and_eof_flush () =
  let srv = server () in
  let _ = load_graph srv 3 in
  check "queued silently" 0
    (List.length
       (Server.handle_line srv
          "{\"schema\":\"WM_REQ_v1\",\"id\":1,\"verb\":\"solve\"}"));
  check "blank line flushes" 1 (List.length (Server.handle_line srv "   "));
  ignore (Server.handle_request srv (solve_req ~id:2 ~seed:9 ()));
  check "eof flushes" 1 (List.length (Server.eof srv));
  match Server.handle_line srv "{not json" with
  | [ r ] ->
      check_str "malformed line answered" "error" (status r);
      check_bool "id 0" true (J.member "id" r = Some (J.Int 0))
  | _ -> Alcotest.fail "expected one error response"

(* Cooperative cancellation in the drivers (the mechanism behind
   per-request deadlines): stop at a round boundary with the last
   committed matching. *)
let test_driver_cancellation () =
  let g = small_graph 11 in
  let params = Wm_core.Params.practical ~epsilon:0.1 () in
  let full =
    Wm_core.Model_driver.streaming params (P.create 5)
      (Wm_stream.Edge_stream.of_graph g)
  in
  check_bool "uncancelled run finishes" true
    (not full.Wm_core.Model_driver.cancelled);
  let r =
    Wm_core.Model_driver.streaming
      ~cancel:(fun ~rounds_run -> rounds_run >= 2)
      params (P.create 5)
      (Wm_stream.Edge_stream.of_graph g)
  in
  check_bool "cancelled flag" true r.Wm_core.Model_driver.cancelled;
  check "stopped at the boundary" 2 r.Wm_core.Model_driver.rounds_run;
  check_bool "partial matching still valid" true
    (Wm_graph.Matching.is_valid_in r.Wm_core.Model_driver.matching g);
  let machines = Stdlib.max 2 (G.m g / Stdlib.max 1 (G.n g)) in
  let cluster =
    Wm_mpc.Cluster.create ~machines ~memory_words:(16 * G.n g * 10) ()
  in
  let rm =
    Wm_core.Model_driver.mpc
      ~cancel:(fun ~rounds_run -> rounds_run >= 1)
      params (P.create 5) cluster g
  in
  check_bool "mpc cancelled" true rm.Wm_core.Model_driver.cancelled;
  check "mpc stopped early" 1 rm.Wm_core.Model_driver.rounds_run

(* The end-to-end determinism contract: the full response transcript of
   a mixed workload is identical at jobs=1 and jobs=4.  (The stats verb
   is exercised elsewhere: it reads process-wide counters, which are
   not reset between the two runs of this test.) *)
let test_jobs_invariant_transcript () =
  let lines =
    [
      "{\"schema\":\"WM_REQ_v1\",\"id\":2,\"verb\":\"solve\",\"seed\":5}";
      "{\"schema\":\"WM_REQ_v1\",\"id\":3,\"verb\":\"solve\",\"algo\":\"greedy\"}";
      "{\"schema\":\"WM_REQ_v1\",\"id\":4,\"verb\":\"solve\",\"algo\":\"mpc\",\"seed\":9}";
      "{\"schema\":\"WM_REQ_v1\",\"id\":5,\"verb\":\"solve\",\"seed\":5}";
      "";
      "{\"schema\":\"WM_REQ_v1\",\"id\":6,\"verb\":\"solve\",\"seed\":6}";
      "{\"schema\":\"WM_REQ_v1\",\"id\":7,\"verb\":\"evict\"}";
    ]
  in
  let transcript jobs =
    Wm_par.Pool.set_default_jobs jobs;
    let srv = server () in
    let d = load_graph srv 13 in
    ignore d;
    List.concat_map (fun l -> List.map J.to_string (Server.handle_line srv l)) lines
  in
  let saved = Wm_par.Pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Wm_par.Pool.set_default_jobs saved)
    (fun () ->
      let t1 = transcript 1 in
      let t4 = transcript 4 in
      check "same response count" (List.length t1) (List.length t4);
      List.iter2 (fun a b -> check_str "byte-identical response" a b) t1 t4)

(* The ping health probe: answers immediately with shard id, queue
   pressure, and cache occupancy — and is deliberately not a batch
   boundary, so probing never forces queued solves to run. *)
let test_ping_probe () =
  let srv = server ~queue_depth:3 ~cache_entries:8 () in
  let _ = load_graph srv 3 in
  ignore (Server.handle_request srv (solve_req ~id:1 ()));
  (match
     Server.handle_request srv
       (req "{\"schema\":\"WM_REQ_v1\",\"id\":2,\"verb\":\"ping\"}")
   with
  | [ r ] ->
      check_str "ok" "ok" (status r);
      check_bool "shard id" true (J.member "shard" r = Some (J.Int 0));
      check_bool "queued solve visible" true
        (J.member "queue" r = Some (J.Int 1));
      check_bool "queue capacity" true
        (J.member "queue_depth" r = Some (J.Int 3));
      check_bool "sessions" true (J.member "sessions" r = Some (J.Int 1));
      check_bool "cache occupancy" true
        (J.member "cache_entries" r = Some (J.Int 0));
      check_bool "cache capacity" true
        (J.member "cache_capacity" r = Some (J.Int 8))
  | _ -> Alcotest.fail "ping must answer exactly once, immediately");
  (* the probed solve is still queued: the next boundary answers it *)
  check "queue not flushed by ping" 1 (List.length (Server.flush srv))

let test_report_shape () =
  let srv = server () in
  let _ = load_graph srv 3 in
  ignore (Server.handle_request srv (solve_req ~id:1 ()));
  ignore (Server.flush srv);
  let r = Server.report_json srv in
  check_bool "BENCH_v1" true (J.member "schema" r = Some (J.Str "BENCH_v1"));
  check_bool "serve mode" true (J.member "mode" r = Some (J.Str "serve"));
  (match J.member "serve" r with
  | Some s ->
      check_bool "request tally" true
        (match J.member "requests" s with Some (J.Int n) -> n >= 2 | _ -> false)
  | None -> Alcotest.fail "report lacks serve block");
  check_bool "ledger has serve.requests" true
    (List.mem "serve.requests"
       (Wm_obs.Ledger.sections Wm_obs.Ledger.default))

(* Last on purpose: destroys the process-wide default pool.  The
   shutdown path must leave destroy idempotent (the at_exit hook runs
   again) and later maps must fail loudly — then a jobs change rebuilds
   a fresh default pool. *)
let test_shutdown_destroys_pool () =
  Wm_par.Pool.set_default_jobs 2;
  let srv =
    Server.create
      { (config ()) with Server.destroy_pool_on_shutdown = true }
  in
  let _ = load_graph srv 3 in
  ignore (Server.handle_request srv (solve_req ~id:1 ()));
  (match
     Server.handle_request srv
       (req "{\"schema\":\"WM_REQ_v1\",\"id\":2,\"verb\":\"shutdown\"}")
   with
  | [ solve; ack ] ->
      check_str "queued solve answered first" "ok" (status solve);
      check_str "shutdown acked" "ok" (status ack)
  | _ -> Alcotest.fail "expected flush + ack");
  check_bool "stopped" true (Server.stopped srv);
  (match Server.handle_request srv (solve_req ~id:3 ()) with
  | [ r ] -> check_str "post-shutdown rejected" "error" (status r)
  | _ -> Alcotest.fail "expected an error response");
  (match Wm_par.Pool.map (Wm_par.Pool.default ()) (fun x -> x) [ 1 ] with
  | _ -> Alcotest.fail "map on the destroyed default pool returned"
  | exception Invalid_argument _ -> ());
  (* a jobs change clears the dead pool; the next default () is live *)
  Wm_par.Pool.set_default_jobs 1;
  check_bool "default pool rebuilt" true
    (Wm_par.Pool.map (Wm_par.Pool.default ()) (fun x -> x * 2) [ 21 ] = [ 42 ])

(* ------------------------------------------------------------------ *)
(* Load generator *)

let test_loadgen_accounting () =
  let srv = server ~queue_depth:4 () in
  let _ = load_graph srv 3 in
  let s =
    Wm_serve.Loadgen.run ~server:srv ~clients:8 ~windows:3 ~distinct:2 ()
  in
  check "every request accounted" s.Wm_serve.Loadgen.requests
    (s.Wm_serve.Loadgen.ok + s.Wm_serve.Loadgen.overloaded
    + s.Wm_serve.Loadgen.deadline + s.Wm_serve.Loadgen.errors);
  check "offered load" (8 * 3) s.Wm_serve.Loadgen.requests;
  check_bool "queue bound enforced" true (s.Wm_serve.Loadgen.overloaded > 0);
  check_bool "repeats hit the cache" true (s.Wm_serve.Loadgen.cached > 0);
  check_bool "hit ratio sane" true
    (Wm_serve.Loadgen.hit_ratio s >= 0. && Wm_serve.Loadgen.hit_ratio s <= 1.);
  check_bool "latencies measured" true (s.Wm_serve.Loadgen.p99_ns >= s.Wm_serve.Loadgen.p50_ns)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "wm_serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "defaults" `Quick test_parse_defaults;
          Alcotest.test_case "latest normalised" `Quick
            test_parse_latest_normalised;
          Alcotest.test_case "rejects" `Quick test_parse_rejects;
          Alcotest.test_case "cache key canonical" `Quick
            test_cache_key_canonical;
          Alcotest.test_case "mutation verbs" `Quick test_parse_mutations;
          Alcotest.test_case "mutation rejects" `Quick
            test_parse_mutation_rejects;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "replace and remove" `Quick
            test_cache_replace_and_remove;
          Alcotest.test_case "capacity 0 disables" `Quick test_cache_disabled;
          Alcotest.test_case "clear resets evictions" `Quick
            test_cache_clear_resets_evictions;
        ] );
      ( "server",
        [
          Alcotest.test_case "load and digest" `Quick test_load_and_digest;
          Alcotest.test_case "cache hit bills zero" `Quick
            test_solve_and_cache_bills_zero;
          Alcotest.test_case "batch dedup" `Quick test_batch_dedup;
          Alcotest.test_case "admission control" `Quick test_admission_control;
          Alcotest.test_case "solve errors" `Quick test_solve_errors;
          Alcotest.test_case "evict purges cache" `Quick
            test_evict_purges_cache;
          Alcotest.test_case "mutate rekeys session" `Quick
            test_mutate_rekeys_session;
          Alcotest.test_case "mutate error leaves session" `Quick
            test_mutate_error_leaves_session;
          Alcotest.test_case "mutate equals direct load" `Quick
            test_mutate_equiv_direct_load;
          Alcotest.test_case "warm solve after delete" `Quick
            test_warm_solve_after_delete;
          Alcotest.test_case "blank line and eof" `Quick
            test_blank_line_and_eof_flush;
          Alcotest.test_case "driver cancellation" `Quick
            test_driver_cancellation;
          Alcotest.test_case "jobs-invariant transcript" `Slow
            test_jobs_invariant_transcript;
          Alcotest.test_case "ping probe" `Quick test_ping_probe;
          Alcotest.test_case "report shape" `Quick test_report_shape;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "accounting" `Quick test_loadgen_accounting;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "destroys default pool" `Quick
            test_shutdown_destroys_pool;
        ] );
    ]
