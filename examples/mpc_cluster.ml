(* Massively parallel matching: running the (1-eps) reduction on a
   simulated MPC cluster (Theorem 1.2.1), next to the classic filtering
   algorithm for maximal matching (LMSV11) as the in-model baseline.

   The simulator executes the computation natively but enforces the
   model: per-machine memory caps, synchronous rounds, and metered
   communication.

   Run with:  dune exec examples/mpc_cluster.exe                        *)

module G = Wm_graph.Weighted_graph
module M = Wm_graph.Matching
module P = Wm_graph.Prng

let () =
  let n = 400 in
  let rng = P.create 11 in
  let g =
    Wm_graph.Gen.random_bipartite rng ~left:(n / 2) ~right:(n / 2)
      ~p:(20.0 /. float_of_int n)
      ~weights:(Wm_graph.Gen.Uniform (1, 64))
  in
  Printf.printf "input: n=%d, m=%d (weights 1..64)\n" (G.n g) (G.m g);
  let machines = Stdlib.max 2 (G.m g / n) in
  let memory_words = 16 * n in
  Printf.printf "cluster: %d machines x %d words (~O(n) per machine)\n\n"
    machines memory_words;

  (* Baseline: distributed maximal matching by filtering. *)
  let c1 = Wm_mpc.Cluster.create ~machines ~memory_words () in
  let maximal = Wm_mpc.Mpc_matching.filtering_maximal c1 (P.create 12) g in
  Printf.printf "filtering maximal matching (LMSV11 baseline):\n";
  Printf.printf "  weight %d, %d rounds, peak machine load %d words\n\n"
    (M.weight maximal) (Wm_mpc.Cluster.rounds c1)
    (Wm_mpc.Cluster.peak_machine_memory c1);

  (* The paper's reduction: (1-eps)-approximate *weighted* matching. *)
  let params = Wm_core.Params.practical ~epsilon:0.15 () in
  let c2 = Wm_mpc.Cluster.create ~machines ~memory_words:(memory_words * 8) () in
  let r = Wm_core.Model_driver.mpc params (P.create 13) c2 g in
  Printf.printf "(1-eps) weighted matching (Theorem 1.2.1, eps=0.15):\n";
  Printf.printf "  weight %d, %d rounds charged (%d improvement iterations)\n"
    (M.weight r.Wm_core.Model_driver.matching)
    r.Wm_core.Model_driver.rounds r.Wm_core.Model_driver.rounds_run;
  Printf.printf "  peak machine load %d words\n\n"
    r.Wm_core.Model_driver.peak_machine_memory;

  let opt =
    M.weight
      (Wm_exact.Hungarian.solve g ~left:(Wm_graph.Bipartition.halves (n / 2)))
  in
  Printf.printf "offline optimum %d: filtering gets %.3f, (1-eps) gets %.3f\n"
    opt
    (float_of_int (M.weight maximal) /. float_of_int opt)
    (float_of_int (M.weight r.Wm_core.Model_driver.matching) /. float_of_int opt);

  (* Shrinking machine memory raises the round count — the model's
     fundamental trade-off, visible in the simulator. *)
  Printf.printf "\nmemory/rounds trade-off for filtering:\n";
  List.iter
    (fun words ->
      let c = Wm_mpc.Cluster.create ~machines ~memory_words:words () in
      match Wm_mpc.Mpc_matching.filtering_maximal c (P.create 12) g with
      | _ ->
          Printf.printf "  %6d words/machine -> %3d rounds\n" words
            (Wm_mpc.Cluster.rounds c)
      | exception Wm_mpc.Cluster.Memory_exceeded { used; capacity; _ } ->
          Printf.printf
            "  %6d words/machine -> infeasible (needs %d > %d on one machine)\n"
            words used capacity)
    [ 16 * n; 4 * n; 2 * n; n ]
