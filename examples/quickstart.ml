(* Quickstart: build a weighted graph, run the paper's two headline
   algorithms and compare them against baselines and the exact optimum.

   Run with:  dune exec examples/quickstart.exe                        *)

module G = Wm_graph.Weighted_graph
module M = Wm_graph.Matching
module E = Wm_graph.Edge

let () =
  (* 1. Build a small weighted graph by hand: the paper's Figure 1. *)
  let g, m0 = Wm_graph.Gen.paper_fig1 () in
  Printf.printf "Figure 1 instance: %d vertices, %d edges\n" (G.n g) (G.m g);
  Printf.printf "initial matching weight: %d (the single edge c-d)\n"
    (M.weight m0);

  (* 2. The (1-eps) algorithm (Theorem 1.2) improves it to the optimum
     by finding weighted augmentations through unweighted layered
     graphs. *)
  let params = Wm_core.Params.practical ~epsilon:0.1 () in
  let rng = Wm_graph.Prng.create 1 in
  let improved, _stats = Wm_core.Main_alg.solve ~init:m0 params rng g in
  Printf.printf "after Main_alg: %d (optimum %d)\n\n" (M.weight improved)
    (Wm_exact.Brute.optimum_weight g);

  (* 3. A bigger random instance, consumed as a random-order stream:
     the single-pass (1/2 + c) algorithm of Theorem 1.1. *)
  let grng = Wm_graph.Prng.create 7 in
  let big =
    Wm_graph.Gen.random_bipartite grng ~left:100 ~right:100 ~p:0.08
      ~weights:(Wm_graph.Gen.Uniform (1, 100))
  in
  let stream =
    Wm_stream.Edge_stream.of_graph
      ~order:(Wm_stream.Edge_stream.Random (Wm_graph.Prng.create 8))
      big
  in
  let ours = Wm_core.Random_arrival.solve ~rng:(Wm_graph.Prng.create 9) stream in
  let baseline =
    Wm_algos.Local_ratio.solve
      (Wm_stream.Edge_stream.of_graph
         ~order:(Wm_stream.Edge_stream.Random (Wm_graph.Prng.create 8))
         big)
  in
  let opt =
    M.weight (Wm_exact.Hungarian.solve big ~left:(Wm_graph.Bipartition.halves 100))
  in
  Printf.printf "random-order stream, n=200 bipartite, optimum %d:\n" opt;
  Printf.printf "  RAND-ARR-MATCHING (one pass): %d  (%.3f of optimum)\n"
    (M.weight ours)
    (float_of_int (M.weight ours) /. float_of_int opt);
  Printf.printf "  local-ratio baseline:          %d  (%.3f of optimum)\n"
    (M.weight baseline)
    (float_of_int (M.weight baseline) /. float_of_int opt);

  (* 4. Augmentations are first-class values: inspect one. *)
  let aug =
    Wm_core.Aug.Path [ E.make 0 2 4; E.make 2 3 5; E.make 3 5 4 ]
  in
  Printf.printf "\nan augmentation on Figure 1: %s, gain %d\n"
    (Format.asprintf "%a" Wm_core.Aug.pp aug)
    (Wm_core.Aug.gain aug m0)
