(* A guided tour of the paper's central construction (Lemma 4.12):
   given a weighted augmentation, exhibit the bipartition, scale and
   (tau^A, tau^B) thresholds whose layered graph contains it — and watch
   the construction fail, exactly as the theory predicts, when the knobs
   are too coarse for the augmentation's relative gain.

   Run with:  dune exec examples/lemma412_walkthrough.exe               *)

module E = Wm_graph.Edge
module M = Wm_graph.Matching
module Tau = Wm_core.Tau
module Certify = Wm_core.Certify

let show tp name g m aug =
  Printf.printf "%s\n  augmentation: %s (gain %d)\n" name
    (Format.asprintf "%a" Wm_core.Aug.pp aug)
    (Wm_core.Aug.gain aug m);
  match Certify.witness tp ~class_ratio:2.0 g m aug with
  | None ->
      Printf.printf
        "  -> no witness at this granularity/layer budget: the rounding\n\
        \     erases the gain (compare the paper's eps^12 formula)\n\n"
  | Some w ->
      Printf.printf
        "  -> witness: scale W = %.0f, thresholds %s, %d repetition(s)\n"
        w.Certify.scale
        (Format.asprintf "%a" Tau.pp w.Certify.pair)
        w.Certify.repetitions;
      Printf.printf "     layered graph contains it and decomposes back: %b\n\n"
        (Certify.verify tp w g m aug)

let () =
  let tp = Tau.make_params ~granularity:(1.0 /. 32.0) ~max_layers:9 ~slack:0.001 in

  Printf.printf "== Figure 1: a weighted 3-augmentation ==\n";
  let g, m = Wm_graph.Gen.paper_fig1 () in
  show tp "the gainful path a-c-d-f" g m
    (Wm_core.Aug.Path [ E.make 0 2 4; E.make 2 3 5; E.make 3 5 4 ]);

  Printf.printf "== Section 1.1.2: the augmenting 4-cycle ==\n";
  let g, m = Wm_graph.Gen.paper_four_cycle () in
  Printf.printf "the matching is PERFECT (weight %d, optimum %d):\n"
    (M.weight m)
    (Wm_exact.Brute.optimum_weight g);
  show tp "the (3,4,3,4) cycle" g m
    (Wm_core.Aug.Cycle
       [ E.make 0 1 3; E.make 1 2 4; E.make 2 3 3; E.make 3 0 4 ]);
  Printf.printf
    "note the repetitions: the cycle appears in the layered graph only\n\
     after being walked twice, so that the repeated gains absorb the\n\
     double-counted matched edge (the paper's blow-up trick).\n\n";

  Printf.printf "== The resolution limit ==\n";
  let g, m = Wm_graph.Gen.augmenting_cycle_family ~cycles:1 ~low:9 ~high:10 in
  let hard =
    Wm_core.Aug.Cycle
      [ E.make 0 1 9; E.make 1 2 10; E.make 2 3 9; E.make 3 0 10 ]
  in
  show tp "the (9,10,9,10) cycle at default knobs" g m hard;
  let tp_fine =
    Tau.make_params ~granularity:(1.0 /. 128.0) ~max_layers:13 ~slack:0.001
  in
  Printf.printf "scaling the knobs with 1/eps, as the paper's formulas do:\n";
  show tp_fine "the same cycle at 13 layers, granule 1/128" g m hard
