(* Online ad allocation as streaming weighted matching.

   Impressions (left side) must be assigned to advertisers (right side);
   an edge's weight is the advertiser's bid for that impression.  Bids
   arrive one at a time in no particular order as the auction log is
   replayed, and the allocator can keep only near-linear state — the
   semi-streaming setting of Section 3.

   Run with:  dune exec examples/ad_auction.exe                         *)

module G = Wm_graph.Weighted_graph
module M = Wm_graph.Matching
module E = Wm_graph.Edge
module P = Wm_graph.Prng

let impressions = 300
let advertisers = 300

(* Synthetic auction: each advertiser has a budget tier (geometric, like
   real ad spend) and bids on a sparse random subset of impressions with
   tier-proportional noise. *)
let build_auction rng =
  let tier = Array.init advertisers (fun _ -> 1 lsl P.int rng 6) in
  let acc = ref [] in
  for imp = 0 to impressions - 1 do
    let bidders = 2 + P.int rng 6 in
    for _ = 1 to bidders do
      let adv = P.int rng advertisers in
      let bid = tier.(adv) * (8 + P.int rng 8) in
      let u = imp and v = impressions + adv in
      if not (List.exists (fun e -> E.endpoints e = (u, v)) !acc) then
        acc := E.make u v bid :: !acc
    done
  done;
  G.create ~n:(impressions + advertisers) !acc

let () =
  let g = build_auction (P.create 2024) in
  Printf.printf "auction log: %d impressions, %d advertisers, %d bids\n"
    impressions advertisers (G.m g);

  let replay seed =
    Wm_stream.Edge_stream.of_graph
      ~order:(Wm_stream.Edge_stream.Random (P.create seed))
      g
  in
  let opt =
    M.weight
      (Wm_exact.Hungarian.solve g ~left:(Wm_graph.Bipartition.halves impressions))
  in
  Printf.printf "offline optimum revenue: %d\n\n" opt;

  (* One-pass allocators over the replayed log. *)
  let meter = Wm_stream.Space_meter.create () in
  let stream = replay 5 in
  let r = Wm_core.Random_arrival.run ~meter ~rng:(P.create 6) stream in
  let pct x = 100.0 *. float_of_int x /. float_of_int opt in
  Printf.printf "RAND-ARR-MATCHING (Thm 1.1):  revenue %d (%.1f%%)\n"
    (M.weight r.Wm_core.Random_arrival.matching)
    (pct (M.weight r.Wm_core.Random_arrival.matching));
  Printf.printf "  retained state: stack=%d  T=%d  peak=%d edges (of %d bids)\n"
    r.Wm_core.Random_arrival.stack_size r.Wm_core.Random_arrival.t_size
    (Wm_stream.Space_meter.peak meter)
    (G.m g);

  let lr = Wm_algos.Local_ratio.solve (replay 5) in
  Printf.printf "local-ratio (PS17 baseline):  revenue %d (%.1f%%)\n"
    (M.weight lr) (pct (M.weight lr));

  (* If the log can be replayed a few more times (multi-pass), the
     (1-eps) algorithm closes most of the remaining gap. *)
  let params = Wm_core.Params.practical ~epsilon:0.1 () in
  let sr = Wm_core.Model_driver.streaming params (P.create 7) (replay 5) in
  Printf.printf
    "multi-pass (1-eps) (Thm 1.2.2): revenue %d (%.1f%%), %d passes\n"
    (M.weight sr.Wm_core.Model_driver.matching)
    (pct (M.weight sr.Wm_core.Model_driver.matching))
    sr.Wm_core.Model_driver.passes
