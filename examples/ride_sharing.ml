(* Ride sharing: drivers must be re-assigned to riders as conditions
   change — the augmenting-cycle scenario of Section 1.1.2.

   Drivers and riders sit on a grid; the value of pairing driver d with
   rider r falls off with their distance.  The dispatcher starts from
   yesterday's (perfect but stale) assignment; improving it requires
   swapping chains and cycles of assignments, not just filling empty
   seats — exactly what the paper's layered-graph reduction finds.

   Run with:  dune exec examples/ride_sharing.exe                       *)

module G = Wm_graph.Weighted_graph
module M = Wm_graph.Matching
module E = Wm_graph.Edge
module P = Wm_graph.Prng

let side = 10 (* grid side; side^2/2 drivers and riders *)

let () =
  let rng = P.create 99 in
  let cells = side * side in
  let drivers = List.init (cells / 2) (fun i -> 2 * i) in
  let pos = Array.init cells (fun i -> (i mod side, i / side)) in
  (* Pair value: high for nearby driver/rider, zero beyond range 6. *)
  let value d r =
    let dx, dy = pos.(d) and rx, ry = pos.(r) in
    let dist = abs (dx - rx) + abs (dy - ry) in
    if dist > 6 then 0 else 64 lsr (dist / 2)
  in
  let edges = ref [] in
  List.iter
    (fun d ->
      List.iter
        (fun r ->
          let w = value d (r + 1) in
          if w > 0 then edges := E.make d (r + 1) w :: !edges)
        drivers)
    drivers;
  let g = G.create ~n:cells !edges in
  Printf.printf "city grid %dx%d: %d drivers, %d riders, %d feasible pairs\n"
    side side (List.length drivers) (List.length drivers) (G.m g);

  (* Yesterday's assignment: greedy on a random replay — decent but
     stale. *)
  let stale =
    Wm_algos.Greedy.maximal_stream
      (Wm_stream.Edge_stream.of_graph
         ~order:(Wm_stream.Edge_stream.Random (P.create 3))
         g)
  in
  Printf.printf "stale assignment: %d pairs, value %d\n" (M.size stale)
    (M.weight stale);

  (* Re-optimise with the (1-eps) algorithm, starting from the stale
     matching — augmentations only ever improve it, so service is never
     interrupted. *)
  let params = Wm_core.Params.practical ~epsilon:0.1 () in
  let improved, stats = Wm_core.Main_alg.solve ~init:stale params rng g in
  Printf.printf "re-optimised: %d pairs, value %d (%d improvement rounds)\n"
    (M.size improved) (M.weight improved)
    (List.length stats.Wm_core.Main_alg.rounds);

  (* Ground truth: the pairing graph is bipartite (drivers/riders), so
     the Hungarian algorithm gives the exact optimum. *)
  (match Wm_exact.Mwm_general.solve_opt g with
  | Some opt ->
      Printf.printf "exact optimum: value %d — we recovered %.1f%%\n"
        (M.weight opt)
        (100.0 *. float_of_int (M.weight improved) /. float_of_int (M.weight opt))
  | None -> Printf.printf "no exact solver for this instance\n");

  (* Show one concrete augmentation the dispatcher would apply. *)
  let one_augs = Wm_core.Aug_class.one_augmentations g stale in
  match one_augs with
  | aug :: _ ->
      Printf.printf "example single-swap improvement: %s (gain %d)\n"
        (Format.asprintf "%a" Wm_core.Aug.pp aug)
        (Wm_core.Aug.gain aug stale)
  | [] ->
      Printf.printf
        "no single-swap improvements exist: all gains need chains/cycles\n"
